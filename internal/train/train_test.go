package train

import (
	"bytes"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"snnsec/internal/compute"
	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// quadratic builds a single-parameter "model" minimising (w-3)² through
// the optimiser interface, by setting the gradient manually.
func quadStep(o Optimizer, w *nn.Param) {
	w.ZeroGrad()
	w.Grad.Data()[0] = 2 * (w.Data.Data()[0] - 3)
	o.Step([]*nn.Param{w})
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	w := nn.NewParam("w", tensor.Scalar(0))
	o := NewSGD(0.1)
	for i := 0; i < 100; i++ {
		quadStep(o, w)
	}
	if math.Abs(w.Data.Item()-3) > 1e-6 {
		t.Errorf("SGD converged to %v, want 3", w.Data.Item())
	}
}

func TestMomentumConvergesOnQuadratic(t *testing.T) {
	w := nn.NewParam("w", tensor.Scalar(0))
	o := NewMomentum(0.05, 0.9)
	for i := 0; i < 200; i++ {
		quadStep(o, w)
	}
	if math.Abs(w.Data.Item()-3) > 1e-4 {
		t.Errorf("Momentum converged to %v, want 3", w.Data.Item())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := nn.NewParam("w", tensor.Scalar(0))
	o := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		quadStep(o, w)
	}
	if math.Abs(w.Data.Item()-3) > 1e-3 {
		t.Errorf("Adam converged to %v, want 3", w.Data.Item())
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	w := nn.NewParam("w", tensor.Scalar(10))
	o := NewSGD(0.1)
	o.WeightDecay = 0.5
	w.ZeroGrad() // zero gradient: only decay acts
	o.Step([]*nn.Param{w})
	if got := w.Data.Item(); math.Abs(got-9.5) > 1e-12 {
		t.Errorf("decayed to %v, want 9.5", got)
	}
}

func TestSetLR(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.1), NewMomentum(0.1, 0.9), NewAdam(0.1)} {
		o.SetLR(0.01)
		if o.LR() != 0.01 {
			t.Errorf("%T SetLR failed", o)
		}
	}
}

func TestSchedules(t *testing.T) {
	cs := ConstantSchedule{Value: 0.5}
	if cs.Rate(0) != 0.5 || cs.Rate(100) != 0.5 {
		t.Error("constant schedule varies")
	}
	ss := StepSchedule{Base: 1, Gamma: 0.1, Every: 10}
	if ss.Rate(0) != 1 || math.Abs(ss.Rate(10)-0.1) > 1e-12 || math.Abs(ss.Rate(25)-0.01) > 1e-12 {
		t.Errorf("step schedule: %v %v %v", ss.Rate(0), ss.Rate(10), ss.Rate(25))
	}
	cos := CosineSchedule{Base: 1, Floor: 0.1, Epochs: 11}
	if cos.Rate(0) != 1 {
		t.Errorf("cosine start = %v", cos.Rate(0))
	}
	if math.Abs(cos.Rate(10)-0.1) > 1e-9 {
		t.Errorf("cosine end = %v", cos.Rate(10))
	}
	if cos.Rate(100) != 0.1 {
		t.Errorf("cosine beyond end = %v", cos.Rate(100))
	}
	mid := cos.Rate(5)
	if mid <= 0.1 || mid >= 1 {
		t.Errorf("cosine mid = %v", mid)
	}
}

func TestStepScheduleBadEveryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every=0 did not panic")
		}
	}()
	StepSchedule{Base: 1, Gamma: 0.5}.Rate(1)
}

func smallData(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultSynthConfig(n, 77)
	cfg.Size = 12
	d, err := dataset.SynthDigits(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Normalize()
	return d
}

func smallCNN(seed uint64) *nn.Sequential {
	r := tensor.NewRand(seed, 0)
	return nn.NewSequential(
		nn.NewConv2D(r, 1, 6, 3, 2, 1), // 12 -> 6
		nn.ReLU{},
		nn.Flatten{},
		nn.NewLinear(r, 6*6*6, 10),
	)
}

func TestFitReducesLossAndReportsAccuracy(t *testing.T) {
	ds := smallData(t, 120)
	model := smallCNN(1)
	var buf bytes.Buffer
	res, err := Fit(model, ds, Config{
		Epochs:    6,
		BatchSize: 24,
		Optimizer: NewAdam(3e-3),
		Log:       &buf,
		Shuffle:   tensor.NewRand(5, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.EpochLosses[0] {
		t.Errorf("loss did not fall: %v -> %v", res.EpochLosses[0], res.FinalLoss)
	}
	if res.TrainAccuracy < 0.5 {
		t.Errorf("train accuracy %v too low", res.TrainAccuracy)
	}
	if !strings.Contains(buf.String(), "epoch") {
		t.Error("no log output")
	}
	acc := Evaluate(model, ds, 32)
	if math.Abs(acc-res.TrainAccuracy) > 0.3 {
		t.Errorf("Evaluate %v inconsistent with training accuracy %v", acc, res.TrainAccuracy)
	}
}

func TestFitEarlyStop(t *testing.T) {
	ds := smallData(t, 60)
	model := smallCNN(2)
	res, err := Fit(model, ds, Config{
		Epochs:       50,
		BatchSize:    20,
		Optimizer:    NewAdam(5e-3),
		EarlyStopAcc: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 50 && res.TrainAccuracy < 0.6 {
		t.Skip("model failed to reach early-stop accuracy; nothing to assert")
	}
	if res.Epochs == 50 {
		t.Error("early stop did not trigger despite reaching threshold")
	}
}

func TestFitConfigValidation(t *testing.T) {
	ds := smallData(t, 10)
	if _, err := Fit(smallCNN(3), ds, Config{Epochs: 0, BatchSize: 4}); err == nil {
		t.Error("Epochs=0 accepted")
	}
	if _, err := Fit(smallCNN(3), ds, Config{Epochs: 1, BatchSize: 0}); err == nil {
		t.Error("BatchSize=0 accepted")
	}
}

func TestFitDivergenceDetection(t *testing.T) {
	ds := smallData(t, 20)
	model := smallCNN(4)
	// An absurd learning rate must produce NaN/Inf promptly and be
	// reported as an error, not a silent garbage model.
	_, err := Fit(model, ds, Config{Epochs: 30, BatchSize: 20, Optimizer: NewSGD(1e12)})
	if err == nil {
		t.Skip("model survived absurd LR; divergence path not exercised")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGradClip(t *testing.T) {
	p := nn.NewParam("p", tensor.New(3))
	p.Grad.CopyFrom(tensor.FromSlice([]float64{3, 4, 0}, 3)) // norm 5
	clipGrads([]*nn.Param{p}, 1)
	if n := tensor.Norm2(p.Grad); math.Abs(n-1) > 1e-12 {
		t.Errorf("clipped norm = %v, want 1", n)
	}
	// Below threshold: untouched.
	p.Grad.CopyFrom(tensor.FromSlice([]float64{0.1, 0, 0}, 3))
	clipGrads([]*nn.Param{p}, 1)
	if p.Grad.At(0) != 0.1 {
		t.Error("clip altered a small gradient")
	}
}

func TestPredictAndConfusion(t *testing.T) {
	ds := smallData(t, 60)
	model := smallCNN(5)
	if _, err := Fit(model, ds, Config{Epochs: 4, BatchSize: 20, Optimizer: NewAdam(3e-3)}); err != nil {
		t.Fatal(err)
	}
	preds := Predict(model, ds.X)
	if len(preds) != ds.Len() {
		t.Fatalf("Predict returned %d results", len(preds))
	}
	cm := ConfusionMatrix(model, ds, 32)
	if len(cm) != 10 {
		t.Fatalf("confusion matrix has %d rows", len(cm))
	}
	total := 0
	for _, row := range cm {
		for _, v := range row {
			total += v
		}
	}
	if total != ds.Len() {
		t.Errorf("confusion matrix sums to %d, want %d", total, ds.Len())
	}
}

func TestScheduleDrivesOptimizer(t *testing.T) {
	ds := smallData(t, 20)
	model := smallCNN(6)
	opt := NewSGD(999) // will be overwritten by the schedule
	_, err := Fit(model, ds, Config{
		Epochs: 2, BatchSize: 10, Optimizer: opt,
		Schedule: ConstantSchedule{Value: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.LR() != 0.01 {
		t.Errorf("schedule did not set LR: %v", opt.LR())
	}
}

// spyBackend wraps a backend and records whether it was ever invoked, so
// tests can prove an ...On entry point actually runs on the caller's
// backend instead of silently substituting the default.
type spyBackend struct {
	compute.Backend
	used atomic.Bool
}

func (s *spyBackend) ParallelFor(n, grain int, fn func(lo, hi int)) {
	s.used.Store(true)
	s.Backend.ParallelFor(n, grain, fn)
}

// TestPredictOnUsesCallerBackend is the regression test for the bug
// where Predict built its tape on the default backend and ignored the
// caller's: PredictOn must route every kernel through the backend it was
// handed, and agree with Predict's results.
func TestPredictOnUsesCallerBackend(t *testing.T) {
	ds := smallData(t, 20)
	model := smallCNN(9)
	spy := &spyBackend{Backend: compute.NewSerial()}
	got := PredictOn(spy, model, ds.X)
	if !spy.used.Load() {
		t.Fatal("PredictOn never used the caller's backend")
	}
	want := Predict(model, ds.X)
	if len(got) != len(want) {
		t.Fatalf("PredictOn returned %d preds, Predict %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pred %d: PredictOn %d vs Predict %d", i, got[i], want[i])
		}
	}
}

// TestLogitsOnMatchesPredict pins the logits entry point the serve
// equivalence harness compares against: argmax of LogitsOn must equal
// PredictOn on the same backend.
func TestLogitsOnMatchesPredict(t *testing.T) {
	ds := smallData(t, 10)
	model := smallCNN(11)
	be := compute.NewSerial()
	logits := LogitsOn(be, model, ds.X)
	preds := PredictOn(be, model, ds.X)
	am := tensor.ArgmaxRowsOn(be, logits)
	for i := range preds {
		if am[i] != preds[i] {
			t.Fatalf("sample %d: argmax(LogitsOn)=%d, PredictOn=%d", i, am[i], preds[i])
		}
	}
}
