package train

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"snnsec/internal/autodiff"
	"snnsec/internal/compute"
	"snnsec/internal/dataset"
	"snnsec/internal/nn"
	"snnsec/internal/tensor"
)

// Config parameterises a training run.
type Config struct {
	Epochs    int
	BatchSize int
	// Backend is the compute backend every tape of this run executes on;
	// nil selects compute.Default(). The exploration sweep hands each
	// grid-point worker a bounded-width backend here so grid-level and
	// kernel-level parallelism compose without oversubscription.
	Backend compute.Backend
	// Optimizer defaults to Adam(1e-3) when nil.
	Optimizer Optimizer
	// Schedule, when non-nil, overrides the optimiser's rate per epoch.
	Schedule Schedule
	// GradClip, when positive, rescales each parameter gradient to at
	// most this L2 norm — essential for stabilising deep BPTT.
	GradClip float64
	// Shuffle reshuffles the training set each epoch with this
	// generator; nil disables shuffling.
	Shuffle *rand.Rand
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
	// EarlyStopAcc stops training once training-batch accuracy reaches
	// this level (0 disables). Used by the exploration sweep to cut the
	// cost of clearly-learnable grid points.
	EarlyStopAcc float64
}

// Result summarises a training run.
type Result struct {
	EpochLosses []float64
	FinalLoss   float64
	// TrainAccuracy is measured on the training set after the last
	// epoch.
	TrainAccuracy float64
	Epochs        int
}

// Fit trains the classifier on ds with softmax cross-entropy.
func Fit(model nn.Classifier, ds *dataset.Dataset, cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: Epochs must be positive, got %d", cfg.Epochs)
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("train: BatchSize must be positive, got %d", cfg.BatchSize)
	}
	opt := cfg.Optimizer
	if opt == nil {
		opt = NewAdam(1e-3)
	}
	if tr, ok := model.(nn.Trainable); ok {
		tr.SetTraining(true)
		defer tr.SetTraining(false)
	}
	res := &Result{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Schedule != nil {
			opt.SetLR(cfg.Schedule.Rate(epoch))
		}
		if cfg.Shuffle != nil {
			ds.Shuffle(cfg.Shuffle)
		}
		var epochLoss float64
		var batches int
		correct, seen := 0, 0
		for _, b := range ds.Batches(cfg.BatchSize) {
			for _, p := range model.Params() {
				p.ZeroGrad()
			}
			tp := autodiff.NewTapeOn(cfg.Backend)
			x := tp.Const(b.X)
			logits := model.Logits(tp, x)
			loss := tp.SoftmaxCrossEntropy(logits, b.Y)
			lv := loss.Data.Item()
			if math.IsNaN(lv) || math.IsInf(lv, 0) {
				return nil, fmt.Errorf("train: loss diverged to %v at epoch %d", lv, epoch)
			}
			epochLoss += lv
			batches++
			tp.Backward(loss)
			if cfg.GradClip > 0 {
				clipGrads(model.Params(), cfg.GradClip)
			}
			opt.Step(model.Params())
			for i, p := range tensor.ArgmaxRowsOn(tp.Backend(), logits.Data) {
				if p == b.Y[i] {
					correct++
				}
				seen++
			}
			// The batch is fully consumed (loss read, gradients applied,
			// predictions scored): return the forward intermediates — the
			// T-step spike/membrane planes of an unrolled SNN — to the
			// backend arena instead of holding them until the next GC.
			tp.Release()
		}
		avg := epochLoss / float64(batches)
		acc := float64(correct) / float64(seen)
		res.EpochLosses = append(res.EpochLosses, avg)
		res.FinalLoss = avg
		res.TrainAccuracy = acc
		res.Epochs = epoch + 1
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d  loss %.4f  train-acc %.3f  lr %.2g\n", epoch, avg, acc, opt.LR())
		}
		if cfg.EarlyStopAcc > 0 && acc >= cfg.EarlyStopAcc {
			break
		}
	}
	return res, nil
}

// clipGrads rescales each parameter gradient to L2 norm at most c.
func clipGrads(params []*nn.Param, c float64) {
	for _, p := range params {
		n := tensor.Norm2(p.Grad)
		if n > c {
			tensor.ScaleInto(p.Grad, c/n)
		}
	}
}

// Evaluate returns classification accuracy of the model on ds, processed
// in batches of batchSize, on the default backend.
func Evaluate(model nn.Classifier, ds *dataset.Dataset, batchSize int) float64 {
	return EvaluateOn(nil, model, ds, batchSize)
}

// EvaluateOn is Evaluate on an explicit compute backend (nil selects the
// default).
func EvaluateOn(be compute.Backend, model nn.Classifier, ds *dataset.Dataset, batchSize int) float64 {
	correct := 0
	for _, b := range ds.Batches(batchSize) {
		tp := autodiff.NewTapeOn(be)
		logits := model.Logits(tp, tp.Const(b.X))
		for i, p := range tensor.ArgmaxRowsOn(tp.Backend(), logits.Data) {
			if p == b.Y[i] {
				correct++
			}
		}
		tp.Release()
	}
	return float64(correct) / float64(ds.Len())
}

// Predict returns the predicted class of each sample in x [N,1,H,W] on
// the default backend.
func Predict(model nn.Classifier, x *tensor.Tensor) []int {
	return PredictOn(nil, model, x)
}

// PredictOn is Predict on an explicit compute backend (nil selects the
// default). Predict used to ignore the caller's backend entirely —
// always recording on a nil-selected tape — which meant serve and grid
// workers could not bound their kernel widths; this variant threads the
// backend through the tape like EvaluateOn does.
func PredictOn(be compute.Backend, model nn.Classifier, x *tensor.Tensor) []int {
	preds, _ := predictLogitsOn(be, model, x, false)
	return preds
}

// LogitsOn runs one taped forward pass on an explicit backend (nil
// selects the default) and returns a copy of the logits that survives
// the tape's arena release. It is the taped reference the tape-free
// inference engine is pinned against.
func LogitsOn(be compute.Backend, model nn.Classifier, x *tensor.Tensor) *tensor.Tensor {
	_, logits := predictLogitsOn(be, model, x, true)
	return logits
}

func predictLogitsOn(be compute.Backend, model nn.Classifier, x *tensor.Tensor, wantLogits bool) ([]int, *tensor.Tensor) {
	tp := autodiff.NewTapeOn(be)
	logits := model.Logits(tp, tp.Const(x)).Data
	var preds []int
	var out *tensor.Tensor
	if wantLogits {
		out = logits.Clone()
	} else {
		preds = tensor.ArgmaxRowsOn(tp.Backend(), logits)
	}
	tp.Release()
	return preds, out
}

// ConfusionMatrix returns the [classes][classes] count matrix with rows =
// true label, columns = prediction.
func ConfusionMatrix(model nn.Classifier, ds *dataset.Dataset, batchSize int) [][]int {
	c := ds.NumClasses()
	m := make([][]int, c)
	for i := range m {
		m[i] = make([]int, c)
	}
	for _, b := range ds.Batches(batchSize) {
		tp := autodiff.NewTape()
		logits := model.Logits(tp, tp.Const(b.X))
		for i, p := range tensor.ArgmaxRows(logits.Data) {
			m[b.Y[i]][p]++
		}
	}
	return m
}
