// Integration tests asserting the paper's qualitative claims end-to-end
// at a reduced scale. They complement the benchmark harness: benchmarks
// print the regenerated figures, these tests *fail* if the reproduction
// loses the phenomena.
package snnsec

import (
	"testing"

	"snnsec/internal/attack"
	"snnsec/internal/core"
	"snnsec/internal/tensor"
)

// reproScale is small enough for `go test ./...` to stay in tens of
// seconds on one core.
func reproScale() core.Scale {
	s := core.BenchScale()
	s.Data = core.DataConfig{TrainN: 500, TestN: 60, ImageSize: 16, Seed: 1}
	s.Epochs = 5
	s.DefaultT = 8
	s.CurveEpsilons = []float64{0, 0.5, 1.0}
	s.AttackSteps = 4
	return s
}

// TestMotivationalCrossover asserts Figure 1's shape: the CNN starts
// ahead on clean data, and beyond a turnaround ε the SNN is the more
// robust model.
func TestMotivationalCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment in -short mode")
	}
	res, err := core.RunFig1(reproScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CNNClean < 0.7 {
		t.Fatalf("CNN clean accuracy %v too low for the comparison", res.CNNClean)
	}
	if res.SNNClean < 0.5 {
		t.Fatalf("SNN clean accuracy %v too low for the comparison", res.SNNClean)
	}
	if res.CNNClean <= res.SNNClean-0.05 {
		t.Errorf("pointer-1 of Fig 1 lost: CNN clean %v should exceed SNN clean %v", res.CNNClean, res.SNNClean)
	}
	if _, ok := res.Crossover(); !ok {
		t.Errorf("no turnaround point: CNN %v vs SNN %v", res.CNN, res.SNN)
	}
}

// TestSilentThresholdUnlearnable asserts Figure 6's dead corner: an
// absurd firing threshold silences the network and the learnability gate
// must reject it.
func TestSilentThresholdUnlearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment in -short mode")
	}
	s := reproScale()
	s.Epochs = 1
	trainDS, testDS, err := core.LoadData(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	_, acc, err := s.TrainSNN(1e6, 4, trainDS, testDS)
	if err != nil {
		t.Fatal(err)
	}
	if acc >= 0.3 {
		t.Errorf("silent network reached accuracy %v", acc)
	}
}

// TestPGDStrongerThanRandomNoise asserts the attack is genuinely
// adversarial: at equal magnitude, PGD must hurt the CNN at least as much
// as undirected Gaussian noise.
func TestPGDStrongerThanRandomNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment in -short mode")
	}
	s := reproScale()
	trainDS, testDS, err := core.LoadData(s.Data)
	if err != nil {
		t.Fatal(err)
	}
	cnn, acc, err := s.TrainCNN(trainDS, testDS)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Fatalf("CNN too weak: %v", acc)
	}
	bounds := attack.DatasetBounds(testDS)
	pgd := attack.Evaluate(cnn, testDS, attack.PGD{
		Eps: 0.5, Steps: 4, RandomStart: true, Rand: tensor.NewRand(1, 1), Bounds: bounds,
	}, 32)
	noise := attack.Evaluate(cnn, testDS, attack.GaussianNoise{
		Std: 0.5, Rand: tensor.NewRand(2, 2), Bounds: bounds,
	}, 32)
	if pgd.RobustAccuracy > noise.RobustAccuracy {
		t.Errorf("PGD (robust %v) weaker than random noise (robust %v)", pgd.RobustAccuracy, noise.RobustAccuracy)
	}
}
